package lpath

import (
	"context"
	"errors"
	"testing"

	ast "lpath/internal/lpath"
)

// TestErrorParityAcrossEntryPoints pins the error contract of the public
// query API: for one identical failure, every entry point — serial,
// parallel, counting, context-honoring, text-compiling — returns the
// identical error, independent of worker scheduling. The parallel paths used
// to surface whichever shard's error won the race; runShards now propagates
// deterministically by shard index.
func TestErrorParityAcrossEntryPoints(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.005, 11, WithWorkers(4), WithShards(4), WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}

	// An attribute step in the main path fails validation (the parser only
	// accepts @ inside predicates, so build the AST directly). The public
	// Compile rejects it, so forge the Query the way a buggy caller (or a
	// future code path skipping validation) would: every evaluation entry
	// point must still fail with the same sentinel.
	badQuery := &Query{text: `//@lex`, path: &ast.Path{Steps: []ast.Step{
		{Axis: ast.AxisDescendant, Test: "lex"},
	}}}
	badQuery.path.Steps[0].Axis = ast.AxisAttribute

	t.Run("forged invalid query", func(t *testing.T) {
		entries := []struct {
			name string
			run  func() error
		}{
			{"Select", func() error { _, err := c.Select(badQuery); return err }},
			{"SelectContext", func() error { _, err := c.SelectContext(context.Background(), badQuery); return err }},
			{"SelectParallel", func() error { _, err := c.SelectParallel(badQuery); return err }},
			{"SelectParallelContext", func() error {
				_, err := c.SelectParallelContext(context.Background(), badQuery)
				return err
			}},
			{"Count", func() error { _, err := c.Count(badQuery); return err }},
			{"CountContext", func() error { _, err := c.CountContext(context.Background(), badQuery); return err }},
			{"CountParallel", func() error { _, err := c.CountParallel(badQuery); return err }},
			{"CountParallelContext", func() error {
				_, err := c.CountParallelContext(context.Background(), badQuery)
				return err
			}},
			{"Explain", func() error { _, err := c.Explain(badQuery); return err }},
			{"ExplainContext", func() error { _, err := c.ExplainContext(context.Background(), badQuery); return err }},
		}
		for _, e := range entries {
			err := e.run()
			if err == nil {
				t.Errorf("%s: no error for invalid query", e.name)
				continue
			}
			if !errors.Is(err, ast.ErrAttrInMainPath) {
				t.Errorf("%s: got %v, want ErrAttrInMainPath", e.name, err)
			}
			if got, want := err.Error(), ast.ErrAttrInMainPath.Error(); got != want {
				t.Errorf("%s: error text %q, want %q", e.name, got, want)
			}
		}
	})

	t.Run("text compile error", func(t *testing.T) {
		const bad = `//VP[`
		_, wantErr := Compile(bad)
		if wantErr == nil {
			t.Fatalf("Compile(%q) unexpectedly succeeded", bad)
		}
		entries := []struct {
			name string
			run  func() error
		}{
			{"SelectText", func() error { _, err := c.SelectText(bad); return err }},
			{"SelectTextContext", func() error { _, err := c.SelectTextContext(context.Background(), bad); return err }},
			{"CountText", func() error { _, err := c.CountText(bad); return err }},
			{"CountTextContext", func() error { _, err := c.CountTextContext(context.Background(), bad); return err }},
			{"ExplainText", func() error { _, err := c.ExplainText(bad); return err }},
			{"CompileCached", func() error { _, err := c.CompileCached(bad); return err }},
		}
		for _, e := range entries {
			err := e.run()
			if err == nil {
				t.Errorf("%s: no error for %q", e.name, bad)
				continue
			}
			if err.Error() != wantErr.Error() {
				t.Errorf("%s: error %q, want %q", e.name, err, wantErr)
			}
		}
	})

	t.Run("cancelled context", func(t *testing.T) {
		q := MustCompile(`//NP`)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		entries := []struct {
			name string
			run  func() error
		}{
			{"SelectContext", func() error { _, err := c.SelectContext(ctx, q); return err }},
			{"CountContext", func() error { _, err := c.CountContext(ctx, q); return err }},
			{"ExplainContext", func() error { _, err := c.ExplainContext(ctx, q); return err }},
			{"SelectParallelContext", func() error { _, err := c.SelectParallelContext(ctx, q); return err }},
			{"CountParallelContext", func() error { _, err := c.CountParallelContext(ctx, q); return err }},
			{"SelectTextContext", func() error { _, err := c.SelectTextContext(ctx, `//NP`); return err }},
			{"CountTextContext", func() error { _, err := c.CountTextContext(ctx, `//NP`); return err }},
		}
		for _, e := range entries {
			if err := e.run(); !errors.Is(err, context.Canceled) {
				t.Errorf("%s: got %v, want context.Canceled", e.name, err)
			}
		}
	})
}

// TestContextEntryPointsAgreeWhenHealthy verifies the context variants are
// result-identical to their plain counterparts under a live context.
func TestContextEntryPointsAgreeWhenHealthy(t *testing.T) {
	c, err := GenerateCorpus("wsj", 0.005, 11, WithPlanCache(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, text := range []string{`//NP`, `//VP/VB-->NN`, `//S[//NP/ADJP]`} {
		q := MustCompile(text)
		want, err := c.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.SelectContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Errorf("SelectContext(%s): %d matches, want %d", text, len(got), len(want))
		}
		n, err := c.CountContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Errorf("CountContext(%s): %d, want %d", text, n, len(want))
		}
		nt, err := c.CountTextContext(ctx, text)
		if err != nil {
			t.Fatal(err)
		}
		if nt != len(want) {
			t.Errorf("CountTextContext(%s): %d, want %d", text, nt, len(want))
		}
		pn, err := c.CountParallelContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if pn != len(want) {
			t.Errorf("CountParallelContext(%s): %d, want %d", text, pn, len(want))
		}
	}
}
