package lpath

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// FuzzEvalOracle is the differential fuzzer over the three evaluators: the
// engine with the cost-based planner, the engine with planning disabled, and
// the reference tree-walking oracle. On every (query, treebank) input that
// compiles and parses, all three must agree exactly — same matches, same
// order, and the two engine configurations must agree on whether evaluation
// errors (runtime errors are data-dependent, and the planner must not change
// which ones surface).
//
// The corpus is built once and shared, so Node pointers are comparable with
// reflect.DeepEqual across all evaluators.
func FuzzEvalOracle(f *testing.F) {
	bank := "(S (NP (N I)) (VP (V saw) (NP (D the) (N dog))))\n" +
		"(S (NP (DT the) (NN cat)) (VP (VB sat) (PP (IN on) (NP (DT a) (NN mat)))))"
	for _, eq := range EvalQueries() {
		f.Add(eq.Text, bank)
	}
	f.Add(`//VP{/VB-->NN}`, bank)
	f.Add(`//NP[count(//NN)=1]`, bank)
	f.Add(`//V[@lex=saw][@lex!=sat]`, bank)
	f.Add(`//S[//^NP]`, "(S (NP (N I)) (VP (V saw)))")
	f.Add(`//_[position()=2]`, bank)
	f.Add(`//NP[not(//JJ) and //NN]`, bank)
	f.Add(`//S{//N$}`, bank)

	f.Fuzz(func(t *testing.T, query, treebank string) {
		if len(query) > 256 || len(treebank) > 2048 {
			return
		}
		q, err := Compile(query)
		if err != nil {
			return // not a valid query; FuzzParse covers the parser
		}
		c := NewCorpus(WithShards(2), WithWorkers(2))
		trees := 0
		for _, line := range strings.Split(treebank, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if err := c.AddSentence(line); err != nil {
				continue // skip malformed trees, keep the parsable ones
			}
			if trees++; trees >= 8 {
				break
			}
		}

		planned, plannedErr := c.Select(q)
		plannedCount, plannedCountErr := c.Count(q)
		par, parErr := c.SelectParallel(q)
		parCount, parCountErr := c.CountParallel(q)

		// Early-termination rotation: a limit derived from the input walks
		// the streaming path through empty, mid-stream and past-the-end
		// prefixes across fuzz inputs. A limited evaluation may legitimately
		// stop before a tree whose data-dependent runtime error the full
		// evaluation hits, so errors only compare one way (checked below).
		limit := len(query) % 5
		limited, limitedErr := c.SelectLimit(q, limit)
		parLimited, parLimitedErr := c.SelectParallelLimit(q, limit)

		// Batch rotation: a duplicate pair rides every cross-query memo layer
		// (rows, frontiers, satisfiers) while the identity property is
		// checked, and the text path adds the per-slot limit. Batch limits
		// evaluate fully and truncate, so error agreement with Select is
		// exact — no early-termination caveat.
		batch, batchErrs := c.SelectBatch([]*Query{q, q})
		batchPar, batchParErrs := c.SelectBatchParallel([]*Query{q, q})
		batchText, batchTextErrs := c.SelectBatchLimitTextContext(
			context.Background(), []string{query, query}, []int{limit, -1})

		// Executor rotation: force the holistic twig sweep on every maximal
		// run, then disable it; then force the set-at-a-time merge executor on
		// every eligible step, then disable it (the merge rotations run with
		// the twig executor off, pinning the per-step pipeline on its own).
		// All must agree with the planner-chosen mix.
		c.Configure(withTwigAlways())
		twigged, twiggedErr := c.Select(q)
		c.Configure(WithoutTwigExecutor())
		untwigged, untwiggedErr := c.Select(q)
		c.Configure(withMergeAlways())
		merged, mergedErr := c.Select(q)
		c.Configure(WithoutMergeExecutor())
		probed, probedErr := c.Select(q)

		// Bitmap rotation: force the dense-bitset kernels onto every eligible
		// scope entry and satisfier set, then disable them entirely (per-scope
		// expansion and map-backed satisfier sets, the pre-bitmap engine).
		c.Configure(withBitmapAlways())
		bitmapped, bitmappedErr := c.Select(q)
		c.Configure(WithoutBitmapExecutor())
		unbitmapped, unbitmappedErr := c.Select(q)

		c.Configure(WithoutPlanner())
		unplanned, unplannedErr := c.Select(q)

		if (plannedErr != nil) != (unplannedErr != nil) {
			t.Fatalf("%q: planned err %v, unplanned err %v", query, plannedErr, unplannedErr)
		}
		if (plannedErr != nil) != (plannedCountErr != nil) ||
			(plannedErr != nil) != (parErr != nil) ||
			(plannedErr != nil) != (parCountErr != nil) {
			t.Fatalf("%q: select err %v, count err %v, parallel errs %v/%v",
				query, plannedErr, plannedCountErr, parErr, parCountErr)
		}
		if (plannedErr != nil) != (mergedErr != nil) || (plannedErr != nil) != (probedErr != nil) {
			t.Fatalf("%q: planned err %v, merge-always err %v, probe-only err %v",
				query, plannedErr, mergedErr, probedErr)
		}
		if (plannedErr != nil) != (twiggedErr != nil) || (plannedErr != nil) != (untwiggedErr != nil) {
			t.Fatalf("%q: planned err %v, twig-always err %v, twig-off err %v",
				query, plannedErr, twiggedErr, untwiggedErr)
		}
		if (plannedErr != nil) != (bitmappedErr != nil) || (plannedErr != nil) != (unbitmappedErr != nil) {
			t.Fatalf("%q: planned err %v, bitmap-always err %v, bitmap-off err %v",
				query, plannedErr, bitmappedErr, unbitmappedErr)
		}
		for i := 0; i < 2; i++ {
			if (plannedErr != nil) != (batchErrs[i] != nil) ||
				(plannedErr != nil) != (batchParErrs[i] != nil) ||
				(plannedErr != nil) != (batchTextErrs[i] != nil) {
				t.Fatalf("%q: planned err %v, batch slot %d errs %v/%v/%v",
					query, plannedErr, i, batchErrs[i], batchParErrs[i], batchTextErrs[i])
			}
		}
		if plannedErr != nil {
			return // all evaluators agree the query errors on this corpus
		}
		if !reflect.DeepEqual(planned, unplanned) {
			t.Fatalf("%q: planned %d matches, unplanned %d — or order differs\nplanned:   %v\nunplanned: %v",
				query, len(planned), len(unplanned), matchKeys(planned), matchKeys(unplanned))
		}
		if !reflect.DeepEqual(planned, merged) {
			t.Fatalf("%q: merge-always differs from planned (%d vs %d matches)\nmerged: %v\nplanned: %v",
				query, len(merged), len(planned), matchKeys(merged), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, probed) {
			t.Fatalf("%q: probe-only differs from planned (%d vs %d matches)\nprobed: %v\nplanned: %v",
				query, len(probed), len(planned), matchKeys(probed), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, twigged) {
			t.Fatalf("%q: twig-always differs from planned (%d vs %d matches)\ntwigged: %v\nplanned: %v",
				query, len(twigged), len(planned), matchKeys(twigged), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, untwigged) {
			t.Fatalf("%q: twig-off differs from planned (%d vs %d matches)\nuntwigged: %v\nplanned: %v",
				query, len(untwigged), len(planned), matchKeys(untwigged), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, bitmapped) {
			t.Fatalf("%q: bitmap-always differs from planned (%d vs %d matches)\nbitmapped: %v\nplanned: %v",
				query, len(bitmapped), len(planned), matchKeys(bitmapped), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, unbitmapped) {
			t.Fatalf("%q: bitmap-off differs from planned (%d vs %d matches)\nunbitmapped: %v\nplanned: %v",
				query, len(unbitmapped), len(planned), matchKeys(unbitmapped), matchKeys(planned))
		}
		if !reflect.DeepEqual(planned, par) {
			t.Fatalf("%q: parallel differs from serial (%d vs %d matches)",
				query, len(par), len(planned))
		}
		if plannedCount != len(planned) || parCount != len(planned) {
			t.Fatalf("%q: Count=%d CountParallel=%d, want %d",
				query, plannedCount, parCount, len(planned))
		}

		if limitedErr != nil {
			t.Fatalf("%q: Select succeeded but SelectLimit(%d) errored: %v", query, limit, limitedErr)
		}
		if parLimitedErr != nil {
			t.Fatalf("%q: Select succeeded but SelectParallelLimit(%d) errored: %v", query, limit, parLimitedErr)
		}
		wantPrefix := planned
		if limit < len(planned) {
			wantPrefix = planned[:limit]
		}
		if !reflect.DeepEqual(limited, wantPrefix) {
			t.Fatalf("%q: SelectLimit(%d) = %v, want prefix %v",
				query, limit, matchKeys(limited), matchKeys(wantPrefix))
		}
		if !reflect.DeepEqual(parLimited, wantPrefix) {
			t.Fatalf("%q: SelectParallelLimit(%d) = %v, want prefix %v",
				query, limit, matchKeys(parLimited), matchKeys(wantPrefix))
		}
		for i := 0; i < 2; i++ {
			if !reflect.DeepEqual(batch[i], planned) || !reflect.DeepEqual(batchPar[i], planned) {
				t.Fatalf("%q: batch slot %d differs from serial (%d/%d vs %d matches)",
					query, i, len(batch[i]), len(batchPar[i]), len(planned))
			}
		}
		if len(batchText[0]) != len(wantPrefix) ||
			(len(wantPrefix) > 0 && !reflect.DeepEqual(batchText[0], wantPrefix)) {
			t.Fatalf("%q: SelectBatchLimitText slot 0 (limit %d) = %v, want prefix %v",
				query, limit, matchKeys(batchText[0]), matchKeys(wantPrefix))
		}
		if !reflect.DeepEqual(batchText[1], planned) {
			t.Fatalf("%q: SelectBatchLimitText slot 1 (unlimited) differs from serial (%d vs %d matches)",
				query, len(batchText[1]), len(planned))
		}

		oracle, oracleErr := c.SelectOracle(q)
		if oracleErr != nil {
			t.Fatalf("%q: engine succeeded but oracle errored: %v", query, oracleErr)
		}
		if !reflect.DeepEqual(planned, oracle) {
			t.Fatalf("%q: engine %d matches, oracle %d — or order differs\nengine: %v\noracle: %v",
				query, len(planned), len(oracle), matchKeys(planned), matchKeys(oracle))
		}
	})
}

// matchKeys renders matches as pointer-independent (tree, tag, words) keys
// for failure messages.
func matchKeys(ms []Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Node.Tag
		if ws := m.Node.Words(); len(ws) > 0 {
			out[i] += "[" + strings.Join(ws, " ") + "]"
		}
	}
	return out
}
