package lpath

import (
	"fmt"
	"testing"

	"lpath/internal/bench"
	"lpath/internal/corpus"
)

// BenchmarkTwigProfile pins the holistic twig sweep's hot loop under the
// profiler: the twig-marked evaluation queries on the full engine against
// the twig-off ablation over the same store.
func BenchmarkTwigProfile(b *testing.B) {
	s, err := bench.BuildSystems(bench.GenerateTrees(corpus.WSJ, 0.05, 42))
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range []int{2, 3, 18, 19, 22, 23} {
		b.Run(fmt.Sprintf("Q%d/twig", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.RunLPath(id); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%d/notwig", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.RunLPathNoTwig(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
