// Command treegen generates synthetic treebank corpora in Penn bracketed
// format, calibrated to the WSJ or Switchboard profiles of the paper's
// evaluation (see internal/corpus).
//
// Usage:
//
//	treegen -profile wsj -scale 0.1 -seed 42 -o wsj.mrg
//	treegen -profile swb -stats
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"lpath/internal/corpus"
	"lpath/internal/tree"
)

func main() {
	var (
		profile = flag.String("profile", "wsj", "corpus profile: wsj or swb")
		scale   = flag.Float64("scale", 0.01, "corpus scale (1.0 = paper size)")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print Figure 6(a)-style statistics to stderr")
	)
	flag.Parse()

	p, err := corpus.ParseProfile(*profile)
	if err != nil {
		fatal(err)
	}
	c := corpus.Generate(corpus.Config{Profile: p, Scale: *scale, Seed: *seed})

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := tree.WriteAll(bw, c); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}

	if *stats {
		st := corpus.Measure(c)
		fmt.Fprintf(os.Stderr, "profile=%s scale=%.3f seed=%d\n", p, *scale, *seed)
		fmt.Fprintf(os.Stderr, "sentences=%d words=%d nodes=%d tags=%d depth=%d bytes=%d\n",
			st.Sentences, st.Words, st.TreeNodes, st.UniqueTags, st.MaxDepth, st.FileSize)
		for i, tf := range c.TopTags(10) {
			fmt.Fprintf(os.Stderr, "  top%-2d %-12s %d\n", i+1, tf.Tag, tf.Count)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treegen:", err)
	os.Exit(1)
}
