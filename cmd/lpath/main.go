// Command lpath runs LPath queries over a treebank corpus.
//
// Usage:
//
//	lpath -corpus trees.mrg '//VP{/VB-->NN}'
//	lpath -gen wsj -scale 0.01 -count '//NP[not(//JJ)]' '//VB->NP'
//	lpath -gen wsj -save-index wsj.lpx '//NP'
//	lpath -load-index wsj.lpx '//NP'
//	lpath -sql '//VB->NP'
//
// The corpus is a Penn-bracketed file (-corpus), a generated synthetic
// corpus (-gen wsj|swb with -scale and -seed), or a prebuilt binary store
// snapshot (-index / -load-index) previously written with -save-index, which
// memory-maps the labeled relation instead of re-parsing. With -sql the tool
// prints the relational translation instead of evaluating. With -count only
// result sizes are printed (via the count-only pipeline); otherwise each
// match is shown as its tree ID, tag and covered words, and -limit is pushed
// into the engine — evaluation stops one match past the limit instead of
// computing the full result set. -oracle cross-checks the engine
// against the reference evaluator and reports any disagreement. -explain
// prints each query's cost-based plan (chosen access paths, predicate order,
// semijoins) with estimated vs actual cardinalities instead of the matches.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lpath"
)

func main() {
	var (
		corpusFile = flag.String("corpus", "", "Penn-bracketed corpus file")
		gen        = flag.String("gen", "", "generate a synthetic corpus: wsj or swb")
		index      = flag.String("index", "", "load a prebuilt store snapshot (see -save-index)")
		loadIndex  = flag.String("load-index", "", "alias for -index")
		saveIndex  = flag.String("save-index", "", "write the built store snapshot (.lpx) to this file")
		scale      = flag.Float64("scale", 0.01, "synthetic corpus scale (1.0 = paper size)")
		seed       = flag.Int64("seed", 42, "synthetic corpus seed")
		sqlOnly    = flag.Bool("sql", false, "print the SQL translation and exit")
		countOnly  = flag.Bool("count", false, "print result sizes only")
		explain    = flag.Bool("explain", false, "print the cost-based plan with estimated vs actual cardinalities")
		limit      = flag.Int("limit", 10, "maximum matches to print per query")
		oracle     = flag.Bool("oracle", false, "cross-check against the reference evaluator")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lpath [flags] QUERY...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	queries := make([]*lpath.Query, 0, flag.NArg())
	for _, text := range flag.Args() {
		q, err := lpath.Compile(text)
		if err != nil {
			fatal(err)
		}
		queries = append(queries, q)
	}

	if *sqlOnly {
		for _, q := range queries {
			sql, err := q.SQL()
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- %s\n%s;\n\n", q, sql)
		}
		return
	}

	if *index == "" {
		*index = *loadIndex
	} else if *loadIndex != "" && *loadIndex != *index {
		fatal(fmt.Errorf("lpath: -index and -load-index disagree"))
	}
	c, err := loadCorpus(*corpusFile, *gen, *index, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	if *saveIndex != "" {
		if err := c.SaveStoreFile(*saveIndex); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote store snapshot to %s\n", *saveIndex)
	}
	st := c.Stats()
	fmt.Printf("corpus: %d trees, %d nodes, %d words\n\n", st.Sentences, st.TreeNodes, st.Words)

	for _, q := range queries {
		switch {
		case *explain:
			report, err := c.Explain(q)
			if err != nil {
				fatal(err)
			}
			fmt.Println(report)
			continue
		case *oracle:
			// The oracle cross-check compares complete result sets, so this
			// path keeps the full evaluation; -limit only caps the display.
			ms, err := c.Select(q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d matches\n", q, len(ms))
			if !*countOnly {
				for i, m := range ms {
					if i >= *limit {
						fmt.Printf("  ... and %d more\n", len(ms)-*limit)
						break
					}
					printMatch(m)
				}
			}
			slow, err := c.SelectOracle(q)
			if err != nil {
				fatal(err)
			}
			if len(slow) != len(ms) {
				fmt.Printf("  ORACLE DISAGREES: engine %d, oracle %d\n", len(ms), len(slow))
			} else {
				fmt.Printf("  oracle agrees (%d matches)\n", len(slow))
			}
		case *countOnly:
			n, err := c.Count(q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: %d matches\n", q, n)
		default:
			// -limit is pushed into the engine: evaluation streams matches
			// and stops one past the limit, so the total is only known when
			// the stream runs dry before the cap.
			k := max(*limit, 0)
			ms, err := c.SelectLimit(q, k+1)
			if err != nil {
				fatal(err)
			}
			if len(ms) > k {
				fmt.Printf("%s: %d+ matches (stopped at -limit %d; -count gives the total)\n", q, k, k)
				ms = ms[:k]
			} else {
				fmt.Printf("%s: %d matches\n", q, len(ms))
			}
			for _, m := range ms {
				printMatch(m)
			}
		}
		fmt.Println()
	}
}

func printMatch(m lpath.Match) {
	fmt.Printf("  tree %d: %s[%s]\n", m.TreeID, m.Node.Tag,
		strings.Join(m.Node.Words(), " "))
}

func loadCorpus(file, gen, index string, scale float64, seed int64) (*lpath.Corpus, error) {
	sources := 0
	for _, s := range []string{file, gen, index} {
		if s != "" {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, fmt.Errorf("lpath: -corpus, -gen and -index are mutually exclusive")
	case file != "":
		return lpath.OpenCorpus(file)
	case gen != "":
		return lpath.GenerateCorpus(gen, scale, seed)
	case index != "":
		return lpath.OpenStore(index)
	default:
		return nil, fmt.Errorf("lpath: provide -corpus FILE, -gen wsj|swb or -index FILE")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpath:", err)
	os.Exit(1)
}
