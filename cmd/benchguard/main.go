// Command benchguard compares two machine-readable benchmark artifacts
// (BENCH_*.json, as written by lpathbench -json) and fails when the current
// run regresses past a threshold.
//
//	benchguard -baseline results/ci_baseline/BENCH_twig.json \
//	           -current bench-out/BENCH_twig.json [-threshold 0.20]
//
// Rows are matched by query id and compared as the ratio current/baseline of
// ns_per_op. The gate is the geometric mean of the ratios: single-query
// jitter on a shared CI runner is expected, a geomean drift beyond the
// threshold (default +20%) is not. Rows faster than -min-ns in both runs are
// skipped — sub-threshold queries are timer noise at smoke scale — and a
// matches mismatch on any compared row voids the comparison (the two runs
// evaluated different corpora) rather than failing it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

type row struct {
	Query   int    `json:"query"`
	Text    string `json:"text"`
	NsPerOp int64  `json:"ns_per_op"`
	Matches int    `json:"matches"`
}

func load(path string) (map[int]row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[int]row, len(rows))
	for _, r := range rows {
		out[r.Query] = r
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json")
	current := flag.String("current", "", "freshly measured BENCH_*.json")
	threshold := flag.Float64("threshold", 0.20, "max tolerated geomean slowdown (0.20 = +20%)")
	minNs := flag.Int64("min-ns", 50_000, "skip rows faster than this in both runs")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}

	type cmpRow struct {
		row
		ratio float64
	}
	var compared []cmpRow
	var logSum float64
	for id, b := range base {
		c, ok := cur[id]
		if !ok {
			fatal(fmt.Errorf("query %d in baseline but not in current run", id))
		}
		if b.Matches != c.Matches {
			fmt.Fprintf(os.Stderr,
				"benchguard: Q%d matches differ (baseline %d, current %d) — runs are not comparable, skipping gate\n",
				id, b.Matches, c.Matches)
			os.Exit(0)
		}
		if b.NsPerOp < *minNs && c.NsPerOp < *minNs {
			continue
		}
		if b.NsPerOp <= 0 || c.NsPerOp <= 0 {
			continue
		}
		r := float64(c.NsPerOp) / float64(b.NsPerOp)
		logSum += math.Log(r)
		compared = append(compared, cmpRow{row: c, ratio: r})
	}
	if len(compared) == 0 {
		fmt.Println("benchguard: no rows above the noise floor to compare")
		return
	}
	geomean := math.Exp(logSum / float64(len(compared)))

	sort.Slice(compared, func(i, j int) bool { return compared[i].ratio > compared[j].ratio })
	fmt.Printf("benchguard: %s vs %s — %d queries compared, geomean ratio %.3f (gate %.3f)\n",
		*current, *baseline, len(compared), geomean, 1+*threshold)
	for _, c := range compared {
		mark := " "
		if c.ratio > 1+*threshold {
			mark = "!"
		}
		fmt.Printf("  %s Q%-3d %-44s %8.3fx  (%d ns/op vs %d)\n",
			mark, c.Query, c.Text, c.ratio, c.NsPerOp, base[c.Query].NsPerOp)
	}
	if geomean > 1+*threshold {
		fmt.Fprintf(os.Stderr, "benchguard: geomean slowdown %.1f%% exceeds the %.0f%% gate\n",
			(geomean-1)*100, *threshold*100)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
