// Command lpathbench regenerates the tables and figures of the paper's
// evaluation (Section 5) over synthetic WSJ/SWB corpora.
//
// Usage:
//
//	lpathbench -fig all -scale 0.05
//	lpathbench -fig 7 -scale 0.1 -csv out/
//
// Figures: 6a (dataset characteristics), 6b (tag frequencies), 6c (query
// result sizes), 7 (WSJ query times), 8 (SWB query times), 9 (scalability),
// 10 (labeling-scheme comparison), ablations, planner (cost-based planner
// on/off), exec (set-at-a-time merge executor on/off with allocation
// counts), twig (holistic twig executor on/off with allocation counts),
// bitmap (dense-bitset filter kernels on/off with allocation counts),
// limit (streaming early termination at limits 1/10/100 vs full
// evaluation), par (parallel sharded execution scaling), batch (EvalBatch
// over a skewed serving mix vs query-by-query evaluation), snapshot (binary
// .lpx cold start vs text parse+build), or all.
//
// -scale sets the fraction of the paper's corpus size (1.0 ≈ 49k WSJ
// sentences / 3.5M nodes; the default 0.05 keeps a full run under a couple
// of minutes). With -csv DIR each timing figure is also written as CSV.
// With -json DIR the planner, exec, twig, bitmap, limit, par and batch
// experiments additionally write the machine-readable BENCH_planner.json,
// BENCH_executor.json, BENCH_twig.json, BENCH_bitmap.json,
// BENCH_limit.json, BENCH_parallel.json and BENCH_batch.json (the CI bench
// artifacts).
// -workers caps the worker sweep of the parallel experiment (default:
// GOMAXPROCS); the sweep measures 1, 2, 4, ... up to the cap.
// -cpuprofile/-memprofile write pprof profiles covering the selected
// experiments (the memory profile is taken at exit).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"lpath/internal/bench"
	"lpath/internal/corpus"
	"lpath/internal/tree"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "experiment: 6a 6b 6c 7 8 9 10 ablations planner exec twig bitmap limit par batch snapshot all")
		scale      = flag.Float64("scale", 0.05, "corpus scale (1.0 = paper size)")
		seed       = flag.Int64("seed", 42, "corpus seed")
		csvDir     = flag.String("csv", "", "directory for CSV output (optional)")
		jsonDir    = flag.String("json", "", "directory for BENCH_*.json artifacts (planner, exec, twig, bitmap, par)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "max workers for the parallel experiment")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	need := func(name string) bool { return all || want[name] }

	fmt.Printf("lpathbench: scale=%.3f seed=%d (paper scale = 1.0)\n\n", *scale, *seed)

	var wsjTrees, swbTrees *tree.Corpus
	loadWSJ := func() *tree.Corpus {
		if wsjTrees == nil {
			wsjTrees = timed("generate WSJ", func() *tree.Corpus {
				return bench.GenerateTrees(corpus.WSJ, *scale, *seed)
			})
		}
		return wsjTrees
	}
	loadSWB := func() *tree.Corpus {
		if swbTrees == nil {
			swbTrees = timed("generate SWB", func() *tree.Corpus {
				return bench.GenerateTrees(corpus.SWB, *scale, *seed)
			})
		}
		return swbTrees
	}
	var wsjSys, swbSys *bench.Systems
	buildWSJ := func() *bench.Systems {
		if wsjSys == nil {
			wsjSys = timed("build WSJ systems", func() *bench.Systems {
				s, err := bench.BuildSystems(loadWSJ())
				check(err)
				return s
			})
		}
		return wsjSys
	}
	buildSWB := func() *bench.Systems {
		if swbSys == nil {
			swbSys = timed("build SWB systems", func() *bench.Systems {
				s, err := bench.BuildSystems(loadSWB())
				check(err)
				return s
			})
		}
		return swbSys
	}

	if need("6a") {
		bench.WriteFig6a(os.Stdout, bench.Fig6a(loadWSJ(), loadSWB()))
		fmt.Println()
	}
	if need("6b") {
		wt, st := bench.Fig6b(loadWSJ(), loadSWB(), 10)
		bench.WriteFig6b(os.Stdout, wt, st)
		fmt.Println()
	}
	if need("6c") {
		rows, err := bench.Fig6c(buildWSJ(), buildSWB())
		check(err)
		bench.WriteFig6c(os.Stdout, rows)
		fmt.Println()
	}
	if need("7") {
		rows, err := bench.Fig7or8(buildWSJ())
		check(err)
		bench.WriteFig7or8(os.Stdout, "Figure 7 (WSJ)", rows)
		writeCSV(*csvDir, "fig7_wsj.csv", bench.CSVFig7or8(rows))
		fmt.Println()
	}
	if need("8") {
		rows, err := bench.Fig7or8(buildSWB())
		check(err)
		bench.WriteFig7or8(os.Stdout, "Figure 8 (SWB)", rows)
		writeCSV(*csvDir, "fig8_swb.csv", bench.CSVFig7or8(rows))
		fmt.Println()
	}
	if need("9") {
		curves, err := bench.Fig9(loadWSJ(), []float64{0.5, 1, 2, 3, 4})
		check(err)
		bench.WriteFig9(os.Stdout, curves)
		writeCSV(*csvDir, "fig9_scalability.csv", bench.CSVFig9(curves))
		fmt.Println()
	}
	if need("10") {
		rows, err := bench.Fig10(buildWSJ())
		check(err)
		bench.WriteFig10(os.Stdout, rows)
		writeCSV(*csvDir, "fig10_labeling.csv", bench.CSVFig10(rows))
		fmt.Println()
	}
	if need("ablations") {
		rows, err := bench.Ablations(buildWSJ())
		check(err)
		bench.WriteAblations(os.Stdout, rows)
		fmt.Println()
	}
	if need("planner") {
		rows, err := bench.PlannerImpact(buildWSJ())
		check(err)
		bench.WritePlannerImpact(os.Stdout, rows)
		writeCSV(*csvDir, "planner_impact.csv", bench.CSVPlannerImpact(rows))
		writeJSON(*jsonDir, "BENCH_planner.json", func() ([]byte, error) { return bench.JSONPlannerImpact(rows) })
		fmt.Println()
	}
	if need("exec") {
		rows, err := bench.ExecutorImpact(buildWSJ())
		check(err)
		bench.WriteExecutorImpact(os.Stdout, rows)
		writeCSV(*csvDir, "executor_impact.csv", bench.CSVExecutorImpact(rows))
		writeJSON(*jsonDir, "BENCH_executor.json", func() ([]byte, error) { return bench.JSONExecutorImpact(rows) })
		fmt.Println()
	}
	if need("twig") {
		rows, err := bench.TwigImpact(buildWSJ())
		check(err)
		bench.WriteTwigImpact(os.Stdout, rows)
		writeCSV(*csvDir, "twig_impact.csv", bench.CSVTwigImpact(rows))
		writeJSON(*jsonDir, "BENCH_twig.json", func() ([]byte, error) { return bench.JSONTwigImpact(rows) })
		fmt.Println()
	}
	if need("bitmap") {
		rows, err := bench.BitmapImpact(buildWSJ())
		check(err)
		bench.WriteBitmapImpact(os.Stdout, rows)
		writeCSV(*csvDir, "bitmap_impact.csv", bench.CSVBitmapImpact(rows))
		writeJSON(*jsonDir, "BENCH_bitmap.json", func() ([]byte, error) { return bench.JSONBitmapImpact(rows) })
		fmt.Println()
	}
	if need("limit") {
		rows, err := bench.LimitImpact(buildWSJ())
		check(err)
		bench.WriteLimitImpact(os.Stdout, rows)
		writeCSV(*csvDir, "limit_impact.csv", bench.CSVLimitImpact(rows))
		writeJSON(*jsonDir, "BENCH_limit.json", func() ([]byte, error) { return bench.JSONLimitImpact(rows) })
		fmt.Println()
	}
	if need("snapshot") {
		r, err := bench.SnapshotImpact(loadWSJ())
		check(err)
		bench.WriteSnapshotImpact(os.Stdout, r)
		writeCSV(*csvDir, "snapshot_impact.csv", bench.CSVSnapshotImpact(r))
		writeJSON(*jsonDir, "BENCH_snapshot.json", func() ([]byte, error) { return bench.JSONSnapshotImpact(r) })
		fmt.Println()
	}
	if need("par") {
		rows, err := bench.ParallelScaling(buildWSJ(), workerSweep(*workers))
		check(err)
		bench.WriteParallel(os.Stdout, rows)
		writeCSV(*csvDir, "parallel_scaling.csv", bench.CSVParallel(rows))
		writeJSON(*jsonDir, "BENCH_parallel.json", func() ([]byte, error) { return bench.JSONParallel(rows) })
		fmt.Println()
	}
	if need("batch") {
		rows, err := bench.BatchImpact(buildWSJ())
		check(err)
		bench.WriteBatchImpact(os.Stdout, rows)
		writeCSV(*csvDir, "batch_impact.csv", bench.CSVBatchImpact(rows))
		writeJSON(*jsonDir, "BENCH_batch.json", func() ([]byte, error) { return bench.JSONBatchImpact(rows) })
		fmt.Println()
	}
}

// workerSweep returns 1, 2, 4, ... doubling up to and including max.
func workerSweep(max int) []int {
	if max < 1 {
		max = 1
	}
	var out []int
	for w := 1; w < max; w *= 2 {
		out = append(out, w)
	}
	return append(out, max)
}

func timed[T any](what string, f func() T) T {
	start := time.Now()
	v := f()
	fmt.Fprintf(os.Stderr, "[%s: %v]\n", what, time.Since(start).Round(time.Millisecond))
	return v
}

// writeFile writes content under dir, creating dir as needed; a missing dir
// flag (empty string) disables the output.
func writeFile(dir, name string, content []byte) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		check(err)
	}
	check(os.WriteFile(filepath.Join(dir, name), content, 0o644))
}

func writeCSV(dir, name, content string) {
	writeFile(dir, name, []byte(content))
}

// writeJSON renders and writes one BENCH_*.json artifact; render only runs
// when -json was given.
func writeJSON(dir, name string, render func() ([]byte, error)) {
	if dir == "" {
		return
	}
	data, err := render()
	check(err)
	writeFile(dir, name, append(data, '\n'))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpathbench:", err)
		os.Exit(1)
	}
}
