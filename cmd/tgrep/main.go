// Command tgrep searches a treebank with TGrep2-dialect patterns (the first
// baseline system of the paper's evaluation; see internal/tgrep for the
// dialect).
//
// Usage:
//
//	tgrep -corpus trees.mrg 'S << saw'
//	tgrep -gen wsj -scale 0.01 -count 'NP , VB' 'NN >> VP=p ,, (VB > =p)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lpath/internal/corpus"
	"lpath/internal/tgrep"
	"lpath/internal/tree"
)

func main() {
	var (
		corpusFile = flag.String("corpus", "", "Penn-bracketed corpus file")
		gen        = flag.String("gen", "", "generate a synthetic corpus: wsj or swb")
		scale      = flag.Float64("scale", 0.01, "synthetic corpus scale")
		seed       = flag.Int64("seed", 42, "synthetic corpus seed")
		countOnly  = flag.Bool("count", false, "print match counts only")
		limit      = flag.Int("limit", 10, "maximum matches to print per pattern")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tgrep [flags] PATTERN...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trees, err := loadTrees(*corpusFile, *gen, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	tc := tgrep.BuildCorpus(trees)
	for _, src := range flag.Args() {
		p, err := tgrep.Compile(src)
		if err != nil {
			fatal(err)
		}
		ms := tc.Search(p)
		fmt.Printf("%s: %d matches\n", src, len(ms))
		if *countOnly {
			continue
		}
		for i, m := range ms {
			if i >= *limit {
				fmt.Printf("  ... and %d more\n", len(ms)-*limit)
				break
			}
			if m.Node != nil {
				fmt.Printf("  tree %d: %s[%s]\n", m.TreeID, m.Node.Tag,
					strings.Join(m.Node.Words(), " "))
			} else {
				fmt.Printf("  tree %d: word %q\n", m.TreeID, m.Word)
			}
		}
	}
}

func loadTrees(file, gen string, scale float64, seed int64) (*tree.Corpus, error) {
	switch {
	case file != "" && gen != "":
		return nil, fmt.Errorf("tgrep: -corpus and -gen are mutually exclusive")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tree.ReadAll(f)
	case gen != "":
		p, err := corpus.ParseProfile(gen)
		if err != nil {
			return nil, err
		}
		return corpus.Generate(corpus.Config{Profile: p, Scale: scale, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("tgrep: provide -corpus FILE or -gen wsj|swb")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tgrep:", err)
	os.Exit(1)
}
