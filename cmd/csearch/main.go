// Command csearch runs CorpusSearch-dialect queries over a treebank (the
// second baseline system of the paper's evaluation; see
// internal/corpussearch for the dialect).
//
// Usage:
//
//	csearch -corpus trees.mrg 'node: VP; query: (VP iDoms VB) and (VB Precedes NN); print: NN'
//	csearch -gen wsj -scale 0.01 -count 'node: S; query: (S Doms saw)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lpath/internal/corpus"
	"lpath/internal/corpussearch"
	"lpath/internal/tree"
)

func main() {
	var (
		corpusFile = flag.String("corpus", "", "Penn-bracketed corpus file")
		gen        = flag.String("gen", "", "generate a synthetic corpus: wsj or swb")
		scale      = flag.Float64("scale", 0.01, "synthetic corpus scale")
		seed       = flag.Int64("seed", 42, "synthetic corpus seed")
		countOnly  = flag.Bool("count", false, "print match counts only")
		limit      = flag.Int("limit", 10, "maximum matches to print per query")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: csearch [flags] 'node: ...; query: ...; print: ...'")
		flag.PrintDefaults()
		os.Exit(2)
	}
	trees, err := loadTrees(*corpusFile, *gen, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	cc := corpussearch.BuildCorpus(trees)
	for _, src := range flag.Args() {
		q, err := corpussearch.Parse(src)
		if err != nil {
			fatal(err)
		}
		ms, err := cc.Search(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d matches\n", src, len(ms))
		if *countOnly {
			continue
		}
		for i, m := range ms {
			if i >= *limit {
				fmt.Printf("  ... and %d more\n", len(ms)-*limit)
				break
			}
			if m.Node != nil {
				fmt.Printf("  tree %d: %s[%s]\n", m.TreeID, m.Node.Tag,
					strings.Join(m.Node.Words(), " "))
			} else {
				fmt.Printf("  tree %d: word %q\n", m.TreeID, m.Word)
			}
		}
	}
}

func loadTrees(file, gen string, scale float64, seed int64) (*tree.Corpus, error) {
	switch {
	case file != "" && gen != "":
		return nil, fmt.Errorf("csearch: -corpus and -gen are mutually exclusive")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tree.ReadAll(f)
	case gen != "":
		p, err := corpus.ParseProfile(gen)
		if err != nil {
			return nil, err
		}
		return corpus.Generate(corpus.Config{Profile: p, Scale: scale, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("csearch: provide -corpus FILE or -gen wsj|swb")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csearch:", err)
	os.Exit(1)
}
