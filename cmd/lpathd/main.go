// Command lpathd serves LPath queries over HTTP.
//
// Usage:
//
//	lpathd -corpus wsj=trees.mrg -addr :8080
//	lpathd -gen wsj -scale 0.01
//	lpathd -corpus a=a.mrg -corpus b=b.mrg -index c=c.idx
//
// Corpora load at startup (bracketed files with -corpus, store snapshots
// with -index, synthetic with -gen) and their indexes are built eagerly, so
// /healthz flips to 200 only once the server can answer queries. Endpoints:
//
//	POST /v1/query    {"corpus","query","limit","timeout_ms"} → matches
//	POST /v1/count    same body → match count only
//	POST /v1/explain  same body → cost-based plan report
//	GET  /healthz     readiness + corpus inventory
//	GET  /metrics     Prometheus text metrics
//	GET  /debug/pprof profiling
//
// Concurrency is bounded (-max-inflight, -max-queue, -queue-wait): excess
// load sheds fast with 429. Every request runs under a deadline
// (-default-timeout, clamped by -max-timeout) and client disconnects cancel
// evaluation cooperatively. Results are cached per corpus generation
// (-result-cache, bounded in bytes by -result-cache-bytes). Concurrent
// /v1/query requests coalesce into shared batch evaluations (-batch-window);
// a request arriving while the server is idle bypasses the window entirely.
// See docs/SERVER.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lpath"
	"lpath/internal/server"
)

// corpusFlags collects repeatable NAME=PATH flags.
type corpusFlags []string

func (c *corpusFlags) String() string     { return strings.Join(*c, ",") }
func (c *corpusFlags) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	var (
		corpora corpusFlags
		indexes corpusFlags
	)
	flag.Var(&corpora, "corpus", "load a Penn-bracketed corpus, NAME=FILE (repeatable; bare FILE uses the basename)")
	flag.Var(&indexes, "index", "load a store snapshot, NAME=FILE (repeatable)")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		gen         = flag.String("gen", "", "generate a synthetic corpus: wsj or swb")
		scale       = flag.Float64("scale", 0.01, "synthetic corpus scale (1.0 = paper size)")
		seed        = flag.Int64("seed", 42, "synthetic corpus seed")
		maxInFlight = flag.Int("max-inflight", 4, "maximum concurrent query evaluations")
		maxQueue    = flag.Int("max-queue", 16, "maximum requests queued for an evaluation slot (negative: no queue)")
		queueWait   = flag.Duration("queue-wait", 100*time.Millisecond, "maximum time a queued request waits before shedding")
		defTimeout  = flag.Duration("default-timeout", 10*time.Second, "per-request evaluation deadline when the request carries none")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "upper clamp on request-supplied deadlines")
		cacheSize   = flag.Int("result-cache", 256, "result cache capacity in entries (negative: disabled)")
		cacheBytes  = flag.Int64("result-cache-bytes", 64<<20, "result cache byte bound (negative: unbounded)")
		batchWindow = flag.Duration("batch-window", time.Millisecond, "request-coalescing gather window for /v1/query (negative: disabled); idle requests always bypass it")
		defLimit    = flag.Int("default-limit", 100, "default /v1/query match-list cap")
		maxLimit    = flag.Int("max-limit", 10000, "upper clamp on request-supplied limits")
		planCache   = flag.Int("plan-cache", 128, "per-corpus compiled-plan cache capacity")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")
	)
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))

	reg := server.NewRegistry()
	opts := func() []lpath.Option { return []lpath.Option{lpath.WithPlanCache(*planCache)} }
	// Both -corpus and -index route through the registry's sniffing loader:
	// snapshot files (by magic, any extension) are memory-mapped, everything
	// else parses as Penn text, so either flag accepts either format.
	loadFile := func(spec string) {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = path[strings.LastIndex(path, "/")+1:]
			for _, ext := range []string{".mrg", ".idx", ".lpx"} {
				name = strings.TrimSuffix(name, ext)
			}
		}
		start := time.Now()
		e, format, err := reg.LoadFile(name, path, opts()...)
		if err != nil {
			fatal(err)
		}
		logger.Info("corpus loaded", "name", name, "path", path, "format", format,
			"sentences", e.Stats.Sentences, "nodes", e.Stats.TreeNodes,
			"load", time.Since(start).Round(time.Millisecond).String())
	}
	for _, spec := range corpora {
		loadFile(spec)
	}
	for _, spec := range indexes {
		loadFile(spec)
	}
	if *gen != "" {
		c, err := lpath.GenerateCorpus(*gen, *scale, *seed, opts()...)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		e, err := reg.Set(*gen, c)
		if err != nil {
			fatal(err)
		}
		logger.Info("corpus loaded", "name", *gen, "format", "generated",
			"sentences", e.Stats.Sentences, "nodes", e.Stats.TreeNodes,
			"load", time.Since(start).Round(time.Millisecond).String())
	}
	if reg.Len() == 0 {
		fatal(fmt.Errorf("no corpora: provide -corpus NAME=FILE, -index NAME=FILE or -gen wsj|swb"))
	}

	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	srv := server.New(reg, server.Config{
		Addr:           *addr,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		CacheSize:      *cacheSize,
		CacheBytes:     *cacheBytes,
		BatchWindow:    *batchWindow,
		DefaultLimit:   *defLimit,
		MaxLimit:       *maxLimit,
		Logger:         reqLogger,
	})

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "corpora", reg.Len())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lpathd:", err)
	os.Exit(1)
}
