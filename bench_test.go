package lpath

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5). Corpora are synthetic WSJ/SWB profiles (see internal/corpus);
// the scale defaults to 0.01 of the paper's corpus size and can be raised
// with the LPATH_SCALE environment variable (e.g. LPATH_SCALE=0.1). The
// figure-level experiment logic lives in internal/bench; cmd/lpathbench
// prints the same experiments as paper-style tables.
//
//	Figure 6(a)  BenchmarkFig6aDatasets
//	Figure 6(b)  BenchmarkFig6bTagFrequencies
//	Figure 6(c)  BenchmarkFig6cResultSizes
//	Figure 7     BenchmarkFig7WSJ/Q*/{LPath,TGrep2,CorpusSearch}
//	Figure 8     BenchmarkFig8SWB/Q*/{LPath,TGrep2,CorpusSearch}
//	Figure 9     BenchmarkFig9Scalability/Q*/x*/{LPath,TGrep2,CorpusSearch}
//	Figure 10    BenchmarkFig10Labeling/Q*/{Interval,StartEnd}
//	Ablations    BenchmarkAblation*

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"lpath/internal/bench"
	"lpath/internal/corpus"
	"lpath/internal/tree"
)

func benchScale() float64 {
	if s := os.Getenv("LPATH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.01
}

var (
	benchOnce sync.Once
	wsjSys    *bench.Systems
	swbSys    *bench.Systems
)

func systems(b *testing.B) (*bench.Systems, *bench.Systems) {
	b.Helper()
	benchOnce.Do(func() {
		scale := benchScale()
		var err error
		wsjSys, err = bench.BuildSystems(bench.GenerateTrees(corpus.WSJ, scale, 42))
		if err != nil {
			b.Fatal(err)
		}
		swbSys, err = bench.BuildSystems(bench.GenerateTrees(corpus.SWB, scale, 42))
		if err != nil {
			b.Fatal(err)
		}
	})
	if wsjSys == nil || swbSys == nil {
		b.Fatal("benchmark corpora failed to build")
	}
	return wsjSys, swbSys
}

// BenchmarkFig6aDatasets measures the Figure 6(a) dataset statistics pass.
func BenchmarkFig6aDatasets(b *testing.B) {
	wsj, swb := systems(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6a(wsj.Trees, swb.Trees)
		if rows[0].Stats.TreeNodes == 0 {
			b.Fatal("empty stats")
		}
	}
}

// BenchmarkFig6bTagFrequencies measures the tag-frequency ranking pass.
func BenchmarkFig6bTagFrequencies(b *testing.B) {
	wsj, swb := systems(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wt, st := bench.Fig6b(wsj.Trees, swb.Trees, 10)
		if len(wt) == 0 || len(st) == 0 {
			b.Fatal("empty rankings")
		}
	}
}

// BenchmarkFig6cResultSizes evaluates all 23 queries on both corpora.
func BenchmarkFig6cResultSizes(b *testing.B) {
	wsj, swb := systems(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6c(wsj, swb); err != nil {
			b.Fatal(err)
		}
	}
}

// perQuerySystems runs the Figure 7/8 grid: every query on every system.
func perQuerySystems(b *testing.B, s *bench.Systems) {
	for _, id := range s.QueryIDs() {
		id := id
		b.Run(fmt.Sprintf("Q%02d/LPath", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.RunLPath(id); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%02d/TGrep2", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.RunTGrep(id)
			}
		})
		b.Run(fmt.Sprintf("Q%02d/CorpusSearch", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.RunCS(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7WSJ is the Figure 7 grid on the WSJ-profile corpus.
func BenchmarkFig7WSJ(b *testing.B) {
	wsj, _ := systems(b)
	perQuerySystems(b, wsj)
}

// BenchmarkFig8SWB is the Figure 8 grid on the SWB-profile corpus.
func BenchmarkFig8SWB(b *testing.B) {
	_, swb := systems(b)
	perQuerySystems(b, swb)
}

var (
	fig9Once sync.Once
	fig9Sys  map[string]*bench.Systems
)

// fig9Systems replicates the WSJ corpus at the Figure 9 factors.
func fig9Systems(b *testing.B) map[string]*bench.Systems {
	b.Helper()
	fig9Once.Do(func() {
		base := bench.GenerateTrees(corpus.WSJ, benchScale(), 42)
		fig9Sys = map[string]*bench.Systems{}
		for _, f := range []float64{0.5, 1, 2, 4} {
			rep := bench.Replicate(base, f)
			s, err := bench.BuildSystems(rep)
			if err != nil {
				b.Fatal(err)
			}
			fig9Sys[fmt.Sprintf("x%g", f)] = s
		}
	})
	return fig9Sys
}

// BenchmarkFig9Scalability measures query time as the WSJ corpus is
// replicated ×0.5 to ×4 (Figure 9), for the representative queries Q3, Q6
// and Q11.
func BenchmarkFig9Scalability(b *testing.B) {
	sys := fig9Systems(b)
	for _, id := range bench.Fig9Queries {
		for _, size := range []string{"x0.5", "x1", "x2", "x4"} {
			s := sys[size]
			id := id
			b.Run(fmt.Sprintf("Q%02d/%s/LPath", id, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.RunLPath(id); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("Q%02d/%s/TGrep2", id, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = s.RunTGrep(id)
				}
			})
			b.Run(fmt.Sprintf("Q%02d/%s/CorpusSearch", id, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.RunCS(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10Labeling compares the interval labeling (LPath engine)
// against the start/end labeling (XPath engine) on the 11 XPath-expressible
// queries (Figure 10).
func BenchmarkFig10Labeling(b *testing.B) {
	wsj, _ := systems(b)
	for _, id := range wsj.QueryIDs() {
		if !wsj.XPathExpressible(id) {
			continue
		}
		id := id
		b.Run(fmt.Sprintf("Q%02d/Interval", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsj.RunLPath(id); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%02d/StartEnd", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsj.RunXPath(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationValueIndex measures the {value, tid, id} secondary index
// contribution on the word-lookup queries (DESIGN.md §5.3).
func BenchmarkAblationValueIndex(b *testing.B) {
	wsj, _ := systems(b)
	for _, id := range []int{1, 11, 12} {
		id := id
		b.Run(fmt.Sprintf("Q%02d/WithIndex", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsj.RunLPath(id); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Q%02d/WithoutIndex", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wsj.RunLPathNoValueIndex(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScopeFilter contrasts the scoped query Q4 with its
// unscoped counterpart Q3: scoping is one extra range conjunct, not a
// rewrite (DESIGN.md §5.4).
func BenchmarkAblationScopeFilter(b *testing.B) {
	wsj, _ := systems(b)
	b.Run("Scoped_Q4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wsj.RunLPath(4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Unscoped_Q3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wsj.RunLPath(3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoinOrder contrasts starting the Q16 join from the rare
// tag (RRC) against starting from the frequent side (PP-TMP, via the parent
// axis) — the selectivity-first join-order choice (DESIGN.md §5.5).
func BenchmarkAblationJoinOrder(b *testing.B) {
	wsj, _ := systems(b)
	rare := MustCompile(`//RRC/PP-TMP`)
	freq := MustCompile(`//PP-TMP[\RRC]`)
	c := &Corpus{trees: treeCorpusOf(wsj.Trees), dirty: true}
	if err := c.Build(); err != nil {
		b.Fatal(err)
	}
	b.Run("RareFirst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Count(rare); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FrequentFirst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Count(freq); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationClustering contrasts the clustered name-range scan with a
// full-relation filter for candidate retrieval — the clustering-by-name
// design (DESIGN.md §5.2).
func BenchmarkAblationClustering(b *testing.B) {
	wsj, _ := systems(b)
	store := wsj.Store
	b.Run("ClusteredNameScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows := store.Name("NP")
			if len(rows) == 0 {
				b.Fatal("no NP rows")
			}
		}
	})
	b.Run("FullRelationFilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, ri := range store.ElementsByLeft() {
				if store.Row(ri).Name == "NP" {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no NP rows")
			}
		}
	})
}

var (
	parBenchOnce sync.Once
	parBenchCorp *Corpus
)

// parallelBenchCorpus builds one shared WSJ corpus with a fixed shard
// layout so every sub-benchmark varies only the worker count.
func parallelBenchCorpus(b *testing.B) *Corpus {
	b.Helper()
	parBenchOnce.Do(func() {
		shards := runtime.GOMAXPROCS(0)
		if shards < 4 {
			shards = 4
		}
		c, err := GenerateCorpus("wsj", benchScale(), 42, WithShards(shards))
		if err != nil {
			return
		}
		if err := c.Build(); err != nil {
			return
		}
		// Warm the shard index outside the timed regions.
		if _, err := c.SelectParallel(MustCompile(`//NP`)); err != nil {
			return
		}
		parBenchCorp = c
	})
	if parBenchCorp == nil {
		b.Fatal("parallel benchmark corpus failed to build")
	}
	return parBenchCorp
}

// BenchmarkParallelSelect compares serial Select against sharded
// SelectParallel at increasing worker counts on representative queries.
// Speedup is bounded by physical cores: expect ≥2x at 4 workers on 4+ cores
// and ~1x on a single-core host.
func BenchmarkParallelSelect(b *testing.B) {
	c := parallelBenchCorpus(b)
	queries := map[string]*Query{
		"Q03": MustCompile(`//VP/VB-->NN`),
		"Q18": MustCompile(`//NP/NP/NP/NP/NP`),
		"Q22": MustCompile(`//NP=>NP=>NP`),
	}
	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for name, q := range queries {
		q := q
		b.Run(name+"/Serial", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Select(q); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, w := range workerCounts {
			w := w
			b.Run(fmt.Sprintf("%s/Workers%d", name, w), func(b *testing.B) {
				c.Configure(WithWorkers(w))
				for i := 0; i < b.N; i++ {
					if _, err := c.SelectParallel(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPlanCache measures the compiled-plan cache against cold
// compilation for a hot query text.
func BenchmarkPlanCache(b *testing.B) {
	const text = `//VP[{//^VB->NP->PP$}]`
	b.Run("ColdCompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Compile(text); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CachedCompile", func(b *testing.B) {
		c := NewCorpus(WithPlanCache(64))
		if _, err := c.CompileCached(text); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.CompileCached(text); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBuildShards measures the sharded index construction that
// SelectParallel adds over the serial store build.
func BenchmarkBuildShards(b *testing.B) {
	trees := bench.GenerateTrees(corpus.WSJ, benchScale(), 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &Corpus{trees: treeCorpusOf(trees), dirty: true, shardsDirty: true, shardCount: 4}
		if err := c.buildShards(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildStore measures index construction (the offline cost of the
// labeling scheme).
func BenchmarkBuildStore(b *testing.B) {
	trees := bench.GenerateTrees(corpus.WSJ, benchScale(), 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := &Corpus{trees: treeCorpusOf(trees), dirty: true}
		if err := c.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func treeCorpusOf(tc *tree.Corpus) *tree.Corpus { return tc }
